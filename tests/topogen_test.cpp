// Property battery for the topology generators (scenario/topogen.hpp) and
// the ECMP routing layer they feed.
//
// Each generator takes ~200 random parameter draws and must hold its
// structural invariants on every one: connectivity, no self links, no
// duplicate cables (outside the dumbbells' deliberate parallel trunks),
// the fat-tree's closed-form node/link arithmetic, the backbone's degree
// bound — and byte-exact determinism: identical (params, seed) give
// bit-identical specs, different seeds give different ones.
//
// The ECMP section checks the determinism contract the rest of the stack
// leans on (DESIGN.md §13): every node's equal-cost set is order-canonical
// and identical across rebuilds, and the spec-level path mirror
// (route_links with a flow id) reproduces, hop for hop, the sets the
// runtime topology installs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"
#include "scenario/builder.hpp"
#include "scenario/report.hpp"
#include "scenario/topogen.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace eac::scenario {
namespace {

constexpr int kDraws = 200;

// Directed BFS reachability from node 0; generators emit every cable as a
// link pair, so full reachability from any one node means connected.
bool connected(const ScenarioSpec& spec) {
  const std::size_t n = spec.node_count();
  if (n == 0) return false;
  std::vector<std::vector<net::NodeId>> out(n);
  for (const LinkSpec& l : spec.links) out[l.from].push_back(l.to);
  std::vector<bool> seen(n, false);
  std::vector<net::NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const net::NodeId v = stack.back();
    stack.pop_back();
    for (const net::NodeId w : out[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == n;
}

// Invariants shared by all generated specs. `allowed_parallel` is the
// number of deliberate duplicate (from, to) pairs — the dumbbells' core
// trunks; everything else must be unique.
void check_common(const ScenarioSpec& spec, int allowed_parallel = 0) {
  ASSERT_FALSE(spec.links.empty());
  ASSERT_FALSE(spec.flows.empty());
  EXPECT_EQ(spec.routing, RoutingKind::kEcmp);
  EXPECT_LT(spec.flows.size(), 256u) << "flow-id encoding caps classes";
  EXPECT_GT(spec.prewarm_bps, 0.0);
  EXPECT_TRUE(connected(spec)) << spec.name;

  int duplicates = 0;
  std::set<std::pair<net::NodeId, net::NodeId>> seen;
  for (const LinkSpec& l : spec.links) {
    EXPECT_NE(l.from, l.to) << "self link in " << spec.name;
    EXPECT_GT(l.rate_bps, 0.0);
    EXPECT_GE(l.delay, sim::SimTime::microseconds(1));
    if (!seen.insert({l.from, l.to}).second) ++duplicates;
  }
  EXPECT_EQ(duplicates, allowed_parallel) << spec.name;

  for (const FlowClass& f : spec.flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_FALSE(route_links(spec, f.src, f.dst).empty())
        << "unroutable flow in " << spec.name;
  }
}

TEST(TopogenFatTree, ArithmeticAndInvariantsOverRandomDraws) {
  sim::RandomStream rng{20260808, 1};
  for (int trial = 0; trial < kDraws; ++trial) {
    FatTreeParams p;
    p.k = 2 * (1 + static_cast<int>(rng.integer(4)));  // 2, 4, 6, 8
    p.delay_jitter_frac = 0.5 * rng.uniform();
    p.fabric_rate_bps = 5e6 + 10e6 * rng.uniform();
    p.traffic = rng.integer(2) == 0 ? FatTreeTraffic::kPodPairs
                                    : FatTreeTraffic::kIntraPod;
    const std::uint64_t seed = rng.integer(1u << 20);
    const ScenarioSpec spec = make_fat_tree(p, seed);

    const int k = p.k;
    const std::size_t hosts = static_cast<std::size_t>(fat_tree_hosts(k));
    // k pods of k/2 edge + k/2 aggregation switches, (k/2)^2 cores.
    EXPECT_EQ(spec.node_count(), hosts + k * k + (k / 2) * (k / 2));
    // One cable per host, (k/2)^2 edge-agg cables per pod, (k/2)^2
    // agg-core cables per pod; two directed links per cable.
    EXPECT_EQ(spec.links.size(), 2 * (hosts + 2 * k * (k / 2) * (k / 2)));
    // Both patterns emit one class per host (pod-pairs: both directions
    // of hosts_per_pod pairings per pod pair).
    EXPECT_EQ(spec.flows.size(), hosts);
    check_common(spec);
  }
}

TEST(TopogenDumbbells, InvariantsOverRandomDraws) {
  sim::RandomStream rng{20260808, 2};
  for (int trial = 0; trial < kDraws; ++trial) {
    DumbbellParams p;
    p.leaves = 1 + static_cast<int>(rng.integer(6));
    p.pairs_per_leaf = 1 + static_cast<int>(rng.integer(6));
    p.core_trunks = 1 + static_cast<int>(rng.integer(4));
    p.core_ratio = 0.1 + rng.uniform();
    p.cross_fraction = rng.uniform() < 0.3 ? 0.0 : rng.uniform();
    p.delay_jitter_frac = 0.5 * rng.uniform();
    const std::uint64_t seed = rng.integer(1u << 20);
    const ScenarioSpec spec = make_dumbbells(p, seed);

    // Hosts + (A_i, B_i) per leaf + the two core routers.
    EXPECT_EQ(spec.node_count(),
              static_cast<std::size_t>(p.leaves * 2 * p.pairs_per_leaf +
                                       2 * p.leaves + 2));
    const std::size_t local = static_cast<std::size_t>(p.leaves) *
                              static_cast<std::size_t>(p.pairs_per_leaf);
    EXPECT_EQ(spec.flows.size(),
              p.cross_fraction > 0 && p.leaves > 1 ? 2 * local : local);
    // The parallel trunks are the only duplicate (from, to) pairs, in
    // each direction.
    check_common(spec, /*allowed_parallel=*/2 * (p.core_trunks - 1));
  }
}

TEST(TopogenBackbone, DegreeBoundAndInvariantsOverRandomDraws) {
  sim::RandomStream rng{20260808, 3};
  for (int trial = 0; trial < kDraws; ++trial) {
    BackboneParams p;
    p.routers = 2 + static_cast<int>(rng.integer(23));
    p.max_degree = 2 + static_cast<int>(rng.integer(5));
    p.hosts_per_router = 1 + static_cast<int>(rng.integer(3));
    p.waxman_alpha = rng.uniform();
    p.waxman_beta = 0.05 + rng.uniform();
    p.flow_pairs = 1 + static_cast<int>(rng.integer(12));
    const std::uint64_t seed = rng.integer(1u << 20);
    const ScenarioSpec spec = make_backbone(p, seed);

    EXPECT_EQ(spec.node_count(),
              static_cast<std::size_t>(p.routers) * (1 + p.hosts_per_router));
    EXPECT_EQ(spec.flows.size(), static_cast<std::size_t>(p.flow_pairs));

    // Router-to-router degree (cables, not directed links) stays within
    // the bound on every draw, spanning phase included.
    std::vector<int> degree(p.routers, 0);
    for (const LinkSpec& l : spec.links) {
      if (l.from < static_cast<net::NodeId>(p.routers) &&
          l.to < static_cast<net::NodeId>(p.routers) && l.from < l.to) {
        ++degree[l.from];
        ++degree[l.to];
      }
    }
    for (int r = 0; r < p.routers; ++r) {
      EXPECT_LE(degree[r], p.max_degree) << "router " << r;
      EXPECT_GE(degree[r], 1) << "router " << r;
    }
    check_common(spec);
  }
}

TEST(Topogen, IdenticalParamsAndSeedAreBitIdentical) {
  for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    EXPECT_EQ(to_json(make_fat_tree(FatTreeParams{}, seed)),
              to_json(make_fat_tree(FatTreeParams{}, seed)));
    EXPECT_EQ(to_json(make_dumbbells(DumbbellParams{}, seed)),
              to_json(make_dumbbells(DumbbellParams{}, seed)));
    EXPECT_EQ(to_json(make_backbone(BackboneParams{}, seed)),
              to_json(make_backbone(BackboneParams{}, seed)));
  }
}

TEST(Topogen, DistinctSeedsGiveDistinctSpecs) {
  // Not just the echoed seed field: the link tables themselves differ
  // (delay jitter for the fabrics, placement for the backbone).
  const auto links_json = [](ScenarioSpec spec) {
    spec.seed = 0;
    JsonWriter w;
    w.array_begin();
    for (const LinkSpec& l : spec.links) {
      w.object_begin()
          .field("from", static_cast<std::uint64_t>(l.from))
          .field("to", static_cast<std::uint64_t>(l.to))
          .field("delay_s", l.delay.to_seconds())
          .object_end();
    }
    w.array_end();
    return w.take();
  };
  EXPECT_NE(links_json(make_fat_tree(FatTreeParams{}, 1)),
            links_json(make_fat_tree(FatTreeParams{}, 2)));
  EXPECT_NE(links_json(make_dumbbells(DumbbellParams{}, 1)),
            links_json(make_dumbbells(DumbbellParams{}, 2)));
  EXPECT_NE(links_json(make_backbone(BackboneParams{}, 1)),
            links_json(make_backbone(BackboneParams{}, 2)));
}

TEST(Topogen, FatTreeKForHosts) {
  EXPECT_EQ(fat_tree_k_for_hosts(1), 2);
  EXPECT_EQ(fat_tree_k_for_hosts(2), 2);
  EXPECT_EQ(fat_tree_k_for_hosts(3), 4);
  EXPECT_EQ(fat_tree_k_for_hosts(16), 4);
  EXPECT_EQ(fat_tree_k_for_hosts(17), 6);
  EXPECT_EQ(fat_tree_k_for_hosts(128), 8);
}

// ---------------------------------------------------------------------
// ECMP determinism contract.

// Build the runtime topology for a spec and return, for every (node,
// dst), the equal-cost set as link INDICES into spec.links — the
// pointer-free form that can be compared across rebuilds.
std::map<std::pair<net::NodeId, net::NodeId>, std::vector<std::size_t>>
runtime_multipath_sets(const ScenarioSpec& spec, sim::Simulator& sim) {
  net::Topology topo{sim};
  const std::size_t n = spec.node_count();
  for (std::size_t i = 0; i < n; ++i) topo.add_node();
  std::map<const net::PacketHandler*, std::size_t> index_of;
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    const LinkSpec& l = spec.links[i];
    net::Link& link =
        topo.add_link(l.from, l.to, l.rate_bps, l.delay,
                      std::make_unique<net::DropTailQueue>(64));
    index_of[&link] = i;
  }
  topo.build_routes_ecmp();

  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<std::size_t>> out;
  for (net::NodeId v = 0; v < n; ++v) {
    for (net::NodeId dst = 0; dst < n; ++dst) {
      const auto& hops = topo.node(v).multipath(dst);
      if (hops.empty()) continue;
      std::vector<std::size_t>& set = out[{v, dst}];
      for (const net::PacketHandler* h : hops) set.push_back(index_of.at(h));
    }
  }
  return out;
}

TEST(EcmpDeterminism, EqualCostSetsAreCanonicalAndStableAcrossRebuilds) {
  const ScenarioSpec spec = make_fat_tree(FatTreeParams{}, 11);
  sim::Simulator sim_a, sim_b;
  const auto a = runtime_multipath_sets(spec, sim_a);
  const auto b = runtime_multipath_sets(spec, sim_b);
  ASSERT_FALSE(a.empty()) << "fat-tree must expose equal-cost sets";
  EXPECT_EQ(a, b);
  for (const auto& [key, set] : a) {
    // Order-canonical: link-insertion (spec) order, no duplicates.
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::set<std::size_t>(set.begin(), set.end()).size(),
              set.size());
    EXPECT_GE(set.size(), 2u);  // singletons collapse to the plain route
    for (const std::size_t li : set) {
      EXPECT_EQ(spec.links[li].from, key.first);
    }
  }
}

// The spec-level mirror must pick, at every node of every flow's walk,
// exactly the link the runtime hash picks from the installed set.
TEST(EcmpDeterminism, RouteLinksMirrorsRuntimeHash) {
  const ScenarioSpec spec = make_fat_tree(FatTreeParams{}, 11);
  sim::Simulator sim;
  const auto sets = runtime_multipath_sets(spec, sim);

  std::set<std::vector<std::size_t>> distinct_paths;
  for (std::uint32_t cls = 0; cls < spec.flows.size(); ++cls) {
    const FlowClass& f = spec.flows[cls];
    for (std::uint32_t n = 0; n < 8; ++n) {
      const net::FlowId flow = (cls << 24) + n;
      const std::vector<std::size_t> path =
          route_links(spec, f.src, f.dst, flow);
      ASSERT_FALSE(path.empty());
      // Shortest: same hop count as the single-path route.
      EXPECT_EQ(path.size(), route_links(spec, f.src, f.dst).size());
      net::NodeId at = f.src;
      for (const std::size_t li : path) {
        ASSERT_EQ(spec.links[li].from, at);
        const auto it = sets.find({at, f.dst});
        if (it != sets.end()) {
          // Multipath node: the mirror's choice must be the runtime's.
          const std::vector<std::size_t>& set = it->second;
          const std::uint32_t pick = net::ecmp_pick(flow, at, set.size());
          EXPECT_EQ(li, set[pick]);
        }
        at = spec.links[li].to;
      }
      EXPECT_EQ(at, f.dst);
      distinct_paths.insert(path);
    }
  }
  // The hash genuinely spreads flows across the fabric.
  EXPECT_GT(distinct_paths.size(), spec.flows.size());
}

TEST(EcmpDeterminism, SinglePathSpecsIgnoreFlowId) {
  ScenarioSpec spec = make_fat_tree(FatTreeParams{}, 11);
  spec.routing = RoutingKind::kSinglePath;
  const FlowClass& f = spec.flows.front();
  const auto base = route_links(spec, f.src, f.dst);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(route_links(spec, f.src, f.dst, (7u << 24) + n), base);
  }
}

}  // namespace
}  // namespace eac::scenario
