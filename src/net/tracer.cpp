#include "net/tracer.hpp"

namespace eac::net {

namespace {
const char* type_name(PacketType t) {
  switch (t) {
    case PacketType::kData: return "data";
    case PacketType::kProbe: return "probe";
    case PacketType::kBestEffort: return "be";
  }
  return "?";
}
}  // namespace

void PacketTracer::dump(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    os << "+ " << r.time.to_seconds() << " flow " << r.flow << " seq "
       << r.seq << ' ' << type_name(r.type) << ' ' << r.size_bytes
       << "B band " << int{r.band};
    if (r.ecn_marked) os << " CE";
    os << '\n';
  }
}

}  // namespace eac::net
