file(REMOVE_RECURSE
  "CMakeFiles/wan_backbone.dir/wan_backbone.cpp.o"
  "CMakeFiles/wan_backbone.dir/wan_backbone.cpp.o.d"
  "wan_backbone"
  "wan_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
