# Empty compiler generated dependencies file for passive_egress_test.
# This may be replaced when dependencies are built.
