// Queue discipline interface and the baseline drop-tail FIFO.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/time.hpp"

namespace eac::net {

/// Per-type drop counters a queue maintains for diagnostics.
struct QueueDropStats {
  std::uint64_t data = 0;
  std::uint64_t probe = 0;
  std::uint64_t best_effort = 0;

  std::uint64_t total() const { return data + probe + best_effort; }
  void count(const Packet& p) {
    switch (p.type) {
      case PacketType::kData: ++data; break;
      case PacketType::kProbe: ++probe; break;
      case PacketType::kBestEffort: ++best_effort; break;
    }
  }
};

/// A buffering/scheduling discipline attached to a link.
///
/// enqueue() may drop the arriving packet (returns false), drop a resident
/// packet (push-out), or set the ECN mark on the arriving packet. dequeue()
/// hands the link the next packet to serialize.
class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  /// Offer a packet. Returns false if the packet was dropped.
  virtual bool enqueue(Packet p, sim::SimTime now) = 0;

  /// Next packet to transmit, or nullopt when empty.
  virtual std::optional<Packet> dequeue(sim::SimTime now) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t packet_count() const = 0;

  /// Earliest time a packet may next be dequeued. Non-work-conserving
  /// disciplines (rate limiters) return a future time when the backlog is
  /// present but not yet eligible; the default is "now".
  virtual sim::SimTime next_ready(sim::SimTime now) const { return now; }

  /// Drop counters (rejected arrivals and push-outs). Decorators forward
  /// to the discipline that actually drops.
  virtual const QueueDropStats& drops() const { return drops_; }

 protected:
  void record_drop(const Packet& p) { drops_.count(p); }

 private:
  QueueDropStats drops_;
};

/// Plain drop-tail FIFO with a packet-count buffer limit (the paper's
/// default router behaviour; buffers are 200 packets in the scenarios).
class DropTailQueue : public QueueDisc {
 public:
  explicit DropTailQueue(std::size_t limit_packets)
      : q_{arena_}, limit_{limit_packets} {}

  bool enqueue(Packet p, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }

 private:
  PacketArena arena_;  // must outlive q_
  PacketFifo q_;
  std::size_t limit_;
};

}  // namespace eac::net
