// Positive fixtures for tools/lint_determinism.py. Never compiled; the
// lint self-test checks that every line carrying an expect-lint marker
// is flagged with exactly that rule and nothing else is.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

int hidden_global_state() {
  std::srand(42);                         // expect-lint(std-rand)
  int a = std::rand();                    // expect-lint(std-rand)
  int b = rand() % 6;                     // expect-lint(std-rand)
  return a + b;
}

long wall_clock_reads() {
  long t = time(nullptr);                 // expect-lint(wall-clock)
  t += std::time(nullptr);                // expect-lint(wall-clock)
  t += clock();                           // expect-lint(wall-clock)
  auto n = std::chrono::system_clock::now();  // expect-lint(wall-clock)
  auto h = std::chrono::high_resolution_clock::now();  // expect-lint(wall-clock)
  return t + n.time_since_epoch().count() + h.time_since_epoch().count();
}

unsigned nondeterministic_seed() {
  std::random_device rd;                  // expect-lint(random-device)
  return rd();
}

double raw_engines() {
  std::mt19937_64 gen;                    // expect-lint(raw-engine)
  std::mt19937 gen32{123};                // expect-lint(raw-engine)
  std::default_random_engine basic;       // expect-lint(raw-engine)
  return static_cast<double>(gen() + gen32() + basic());
}

struct Book {
  std::unordered_map<int, double> table_;

  double sum_in_arbitrary_order() const {
    double s = 0;
    for (const auto& [k, v] : table_) {   // expect-lint(unordered-iteration)
      s += v * k;
    }
    return s;
  }
};
