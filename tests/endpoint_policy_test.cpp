#include "eac/endpoint_policy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/priority_queue.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"

namespace eac {
namespace {

struct Rig {
  Rig() : topo{sim} {
    topo.add_node();
    topo.add_node();
    topo.add_link(0, 1, 10e6, sim::SimTime::milliseconds(20),
                  std::make_unique<net::StrictPriorityQueue>(2, 200));
  }
  FlowSpec spec(net::FlowId id, double eps = 0.0) {
    FlowSpec s;
    s.flow = id;
    s.src = 0;
    s.dst = 1;
    s.rate_bps = 256'000;
    s.packet_size = 125;
    s.epsilon = eps;
    return s;
  }
  sim::Simulator sim;
  net::Topology topo;
};

TEST(EndpointPolicy, ResolvesEachRequestExactlyOnce) {
  Rig rig;
  EndpointAdmission policy{rig.sim, rig.topo, drop_in_band()};
  int verdicts = 0;
  for (net::FlowId id = 1; id <= 5; ++id) {
    policy.request(rig.spec(id), [&](bool) { ++verdicts; });
  }
  EXPECT_EQ(policy.active_probes(), 5u);
  rig.sim.run(sim::SimTime::seconds(10));
  EXPECT_EQ(verdicts, 5);
  EXPECT_EQ(policy.active_probes(), 0u);
}

TEST(EndpointPolicy, ConcurrentProbesAreIndependent) {
  Rig rig;
  EndpointAdmission policy{rig.sim, rig.topo, drop_in_band()};
  int admitted = 0;
  // 10 concurrent probes at 256 kbps each = 2.56 Mbps on 10 Mbps: all
  // must pass.
  for (net::FlowId id = 1; id <= 10; ++id) {
    policy.request(rig.spec(id), [&](bool ok) { admitted += ok ? 1 : 0; });
  }
  rig.sim.run(sim::SimTime::seconds(10));
  EXPECT_EQ(admitted, 10);
}

TEST(EndpointPolicy, AccountsProbeTraffic) {
  Rig rig;
  EndpointAdmission policy{rig.sim, rig.topo, drop_in_band()};
  policy.request(rig.spec(1), [](bool) {});
  rig.sim.run(sim::SimTime::seconds(10));
  // Slow-start probe at 256 kbps: ~(1/16+...+1) s of full rate = ~496 pkts.
  EXPECT_NEAR(static_cast<double>(policy.probes_sent()), 496, 30);
}

TEST(EndpointPolicy, TooManyConcurrentProbesCollapseToRejections) {
  Rig rig;
  EndpointAdmission policy{rig.sim, rig.topo, drop_in_band()};
  int admitted = 0, verdicts = 0;
  // 80 concurrent probes want 20 Mbps on a 10 Mbps link: the probe
  // traffic itself congests the link and most flows must be refused
  // (the thrashing mechanism of §2.2.3).
  for (net::FlowId id = 1; id <= 80; ++id) {
    policy.request(rig.spec(id), [&](bool ok) {
      ++verdicts;
      admitted += ok ? 1 : 0;
    });
  }
  rig.sim.run(sim::SimTime::seconds(15));
  EXPECT_EQ(verdicts, 80);
  EXPECT_LT(admitted, 45);
}

}  // namespace
}  // namespace eac
