// FlowTable: the SoA backing store of the scale flow driver. What must
// hold: dense indices are recycled LIFO, generation tags make recycled
// handles to departed flows detectably stale (never aliased to the new
// occupant), and — in audit builds — dereferencing a stale handle trips
// the audit layer instead of silently reading another flow's row.
#include "eac/flow_table.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eac {
namespace {

TEST(FlowTable, AllocateGrowsDenseIndices) {
  FlowTable t;
  std::vector<FlowHandle> hs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    FlowHandle h = t.allocate(/*flow_id=*/100 + i, /*class_idx=*/i % 2);
    EXPECT_EQ(h.index, i) << "fresh table must hand out 0,1,2,...";
    EXPECT_TRUE(t.is_live(h));
    hs.push_back(h);
  }
  EXPECT_EQ(t.live(), 8u);
  EXPECT_EQ(t.capacity(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::size_t idx = t.index_of(hs[i]);
    EXPECT_EQ(t.flow_id[idx], 100 + i);
    EXPECT_EQ(t.class_idx[idx], i % 2);
  }
}

TEST(FlowTable, ReleaseRecyclesIndexWithFreshGeneration) {
  FlowTable t;
  const FlowHandle a = t.allocate(1, 0);
  const FlowHandle b = t.allocate(2, 0);
  t.release(a);
  EXPECT_EQ(t.live(), 1u);

  // LIFO free list: the very next allocation reuses a's row...
  const FlowHandle c = t.allocate(3, 1);
  EXPECT_EQ(c.index, a.index);
  EXPECT_EQ(t.capacity(), 2u) << "reuse must not grow the table";
  // ...under a different generation, so the old handle stays dead.
  EXPECT_NE(c.gen, a.gen);
  EXPECT_FALSE(t.is_live(a));
  EXPECT_TRUE(t.is_live(b));
  EXPECT_TRUE(t.is_live(c));
  EXPECT_EQ(t.flow_id[t.index_of(c)], 3u);
}

TEST(FlowTable, StaleHandleStaysDeadThroughManyReuses) {
  FlowTable t;
  FlowHandle first = t.allocate(0, 0);
  t.release(first);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    FlowHandle h = t.allocate(i, 0);
    ASSERT_EQ(h.index, first.index);
    EXPECT_FALSE(t.is_live(first))
        << "generation " << i << " aliased the original handle";
    t.release(h);
  }
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.capacity(), 1u);
}

TEST(FlowTable, DefaultAndForeignHandlesAreNotLive) {
  FlowTable t;
  EXPECT_FALSE(t.is_live(FlowHandle{}));  // gen 0 is never valid
  t.allocate(1, 0);
  EXPECT_FALSE(t.is_live(FlowHandle{5, 1}));  // index out of range
  EXPECT_FALSE(t.is_live(FlowHandle{0, 99}));  // wrong generation
}

TEST(FlowTable, ColumnsSurviveGrowth) {
  // Handles are stable names, not pointers: growth may reallocate every
  // column, but index_of(h) must keep resolving to the same row data.
  FlowTable t;
  const FlowHandle h0 = t.allocate(7, 1);
  t.sent[t.index_of(h0)] = 41;
  for (std::uint64_t i = 0; i < 1000; ++i) t.allocate(100 + i, 0);
  ASSERT_TRUE(t.is_live(h0));
  EXPECT_EQ(t.flow_id[t.index_of(h0)], 7u);
  EXPECT_EQ(t.sent[t.index_of(h0)], 41u);
}

#if EAC_AUDIT_ENABLED

using FlowTableDeathTest = ::testing::Test;

TEST(FlowTableDeathTest, StaleHandleDereferenceTripsAudit) {
  // Use-after-free of a departed flow: the recycled row now belongs to a
  // different flow, and the audit layer must refuse to hand it out.
  FlowTable t;
  const FlowHandle dead = t.allocate(1, 0);
  t.release(dead);
  t.allocate(2, 0);  // recycles the row under a new generation
  EXPECT_DEATH(static_cast<void>(t.index_of(dead)), "stale flow handle");
}

TEST(FlowTableDeathTest, DoubleReleaseTripsAudit) {
  FlowTable t;
  const FlowHandle h = t.allocate(1, 0);
  t.release(h);
  EXPECT_DEATH(t.release(h), "stale flow handle");
}

#else  // !EAC_AUDIT_ENABLED

TEST(FlowTableDeathTest, RequiresAuditBuild) {
  GTEST_SKIP() << "configure with -DEAC_AUDIT=ON to exercise the stale-handle"
                  " audit checks";
}

#endif  // EAC_AUDIT_ENABLED

}  // namespace
}  // namespace eac
