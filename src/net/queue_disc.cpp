#include "net/queue_disc.hpp"

namespace eac::net {

bool DropTailQueue::do_enqueue(Packet p, sim::SimTime /*now*/) {
  if (q_.size() >= limit_) {
    record_drop(p);
    return false;
  }
  q_.push_back(p);
  bytes_ += p.size_bytes;
  return true;
}

std::optional<Packet> DropTailQueue::do_dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace eac::net
