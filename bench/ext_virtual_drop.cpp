// Extension (footnote 14): out-of-band *virtual dropping*. The router
// runs the marking designs' virtual queue but, instead of setting ECN
// bits, drops probe packets the virtual queue would have dropped. The
// paper contends this achieves "exactly the same results" as out-of-band
// marking with no ECN deployment; this bench checks that claim on the
// basic scenario.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace eac;
  bench::init(argc, argv);
  const auto scale = scenario::bench_scale();
  std::printf("== Extension: out-of-band virtual dropping vs marking ==\n");
  bench::print_scale_banner(scale);
  scenario::RunConfig base = bench::onoff_run(traffic::exp1(), 3.5, scale);
  base.policy = scenario::PolicyKind::kEndpoint;

  bench::print_loss_load_header();
  for (const EacConfig design :
       {mark_out_of_band(), virtual_drop_out_of_band()}) {
    for (double eps : bench::epsilon_sweep(design)) {
      scenario::RunConfig cfg = base;
      cfg.eac = design;
      for (auto& c : cfg.classes) c.epsilon = eps;
      bench::print_loss_load_row(
          design.name(), eps,
          scenario::run_single_link_averaged(cfg, scale.seeds));
    }
  }
  std::printf("# expected: the two designs trace near-identical loss-load "
              "curves.\n");
  {
    scenario::RunConfig run = base;
    run.eac = virtual_drop_out_of_band();
    bench::maybe_trace_run(run);
  }
  return 0;
}
