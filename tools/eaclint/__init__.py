"""eac_lint: regex-level static analysis rules for the EAC simulator tree.

The package splits into a shared scanner (`core`) and per-category rule
modules. `tools/eac_lint.py` is the CLI; `tools/lint_determinism.py` is a
compatibility shim that runs the determinism category only.
"""

from __future__ import annotations

from .core import Finding, Rule, SourceFile, all_rules, select_rules

__all__ = ["Finding", "Rule", "SourceFile", "all_rules", "select_rules"]
