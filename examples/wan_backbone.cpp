// WAN backbone: admission over multiple congested hops (Figure 10's
// topology as an application demo).
//
// A provider's three-hop 10 Mbps backbone carries long transit flows
// end-to-end while regional cross traffic loads every hop. The example
// shows the operational picture an operator would look at: per-hop
// utilization, and how transit (multi-hop) flows fare against regional
// (single-hop) flows under endpoint admission control vs the router-
// based MBAC.
#include <cstdio>

#include "scenario/runner.hpp"
#include "traffic/catalog.hpp"

int main() {
  using namespace eac;

  const auto describe = [](const char* name,
                           const scenario::MultiLinkResult& r) {
    std::printf("%s\n", name);
    std::printf("  hop utilization    : %.2f / %.2f / %.2f\n",
                r.link_utilization[0], r.link_utilization[1],
                r.link_utilization[2]);
    double cross_block = 0, cross_loss = 0;
    for (int g = 0; g < 3; ++g) {
      cross_block += r.groups.at(g).blocking_probability() / 3;
      cross_loss += r.groups.at(g).loss_probability() / 3;
    }
    const auto& transit = r.groups.at(3);
    std::printf("  regional flows     : blocking %.1f%%, loss %.4f%%\n",
                100 * cross_block, 100 * cross_loss);
    std::printf("  transit (3-hop)    : blocking %.1f%%, loss %.4f%%\n\n",
                100 * transit.blocking_probability(),
                100 * transit.loss_probability());
  };

  scenario::RunConfig cfg;
  FlowClass c;
  c.arrival_rate_per_s = 1.0 / 7.0;  // per class; ~110% offered per hop
  c.onoff = traffic::exp1();
  c.packet_size = traffic::kOnOffPacketBytes;
  c.probe_rate_bps = c.onoff.burst_rate_bps;
  c.epsilon = 0.02;
  cfg.classes = {c};
  cfg.duration_s = 700;
  cfg.warmup_s = 250;
  cfg.seed = 31;

  cfg.policy = scenario::PolicyKind::kEndpoint;
  cfg.eac = drop_in_band();
  describe("endpoint probing (drop in-band, eps=0.02)",
           scenario::run_multi_link(cfg));

  cfg.eac = mark_out_of_band();
  for (auto& cls : cfg.classes) cls.epsilon = 0.05;
  describe("endpoint probing (mark out-of-band, eps=0.05)",
           scenario::run_multi_link(cfg));

  cfg.policy = scenario::PolicyKind::kMbac;
  cfg.mbac_target_utilization = 0.9;
  describe("router MBAC (Measured Sum, u=0.9)",
           scenario::run_multi_link(cfg));

  std::printf("Transit flows pay roughly the product of per-hop acceptance "
              "probabilities in\nblocking and ~3x the single-hop loss - the "
              "price of a longer path, not a failure\nof the probing signal "
              "(paper §4.6).\n");
  return 0;
}
