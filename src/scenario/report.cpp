#include "scenario/report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Build provenance normally arrives from CMake (add_compile_definitions);
// the fallbacks keep non-CMake builds (clang-tidy, IDE probes) compiling.
#ifndef EAC_BUILD_COMPILER
#define EAC_BUILD_COMPILER "unknown"
#endif
#ifndef EAC_BUILD_TYPE
#define EAC_BUILD_TYPE ""
#endif
#ifndef EAC_BUILD_LTO
#define EAC_BUILD_LTO 0
#endif

namespace eac::scenario {

namespace {

const char* policy_name(PolicyKind p) {
  return p == PolicyKind::kMbac ? "mbac" : "endpoint";
}

const char* algo_name(ProbeAlgo a) {
  switch (a) {
    case ProbeAlgo::kSimple: return "simple";
    case ProbeAlgo::kEarlyReject: return "earlyreject";
    case ProbeAlgo::kSlowStart: break;
  }
  return "slowstart";
}

const char* shape_name(ProbeShape s) {
  switch (s) {
    case ProbeShape::kTokenBurst: return "token-burst";
    case ProbeShape::kEffectiveRate: return "effective-rate";
    case ProbeShape::kPaced: break;
  }
  return "paced";
}

void append_groups(JsonWriter& w,
                   const std::map<int, stats::GroupCounters>& groups) {
  w.key("groups").object_begin();
  for (const auto& [g, c] : groups) {
    w.field_raw(std::to_string(g), to_json(c));
  }
  w.object_end();
}

void append_flow_class(JsonWriter& w, const FlowClass& f) {
  w.object_begin()
      .field("group", f.group)
      .field("src", f.src)
      .field("dst", f.dst)
      .field("kind", f.kind == SourceKind::kTrace ? "trace" : "onoff")
      .field("arrival_rate_per_s", f.arrival_rate_per_s)
      .field("probe_rate_bps", f.probe_rate_bps)
      .field("packet_size", static_cast<std::uint64_t>(f.packet_size))
      .field("epsilon", f.epsilon)
      .object_end();
}

void append_eac(JsonWriter& w, const EacConfig& eac) {
  w.object_begin()
      .field("design", eac.name())
      .field("algo", algo_name(eac.algo))
      .field("shape", shape_name(eac.shape))
      .field("stages", eac.stages)
      .field("stage_seconds", eac.stage_seconds)
      .object_end();
}

}  // namespace

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::object_begin() {
  separate();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::object_end() {
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::array_begin() {
  separate();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::array_end() {
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  append_escaped(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  append_escaped(v);
  return *this;
}

void JsonWriter::append_escaped(std::string_view v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  separate();
  out_ += json;
  return *this;
}

std::string to_json(const stats::GroupCounters& c) {
  JsonWriter w;
  w.object_begin()
      .field("attempts", c.attempts)
      .field("accepts", c.accepts)
      .field("data_sent", c.data_sent)
      .field("data_received", c.data_received)
      .field("data_marked", c.data_marked)
      .field("blocking", c.blocking_probability())
      .field("loss", c.loss_probability())
      .object_end();
  return w.take();
}

std::string to_json(const sim::AuditReport& a) {
  JsonWriter w;
  w.object_begin()
      .field("packets_created", a.packets_created)
      .field("packets_delivered", a.packets_delivered)
      .field("packets_dropped", a.packets_dropped)
      .field("packets_residual", a.packets_residual)
      .field("pool_allocs", a.pool_allocs)
      .field("pool_releases", a.pool_releases)
      .field("events_executed", a.events_executed)
      .field("checks_passed", a.checks_passed)
      .field("conserved", a.conserved())
      .object_end();
  return w.take();
}

std::string to_json(const telemetry::Report& t) {
  JsonWriter w;
  w.object_begin()
      .field("sample_period_s", t.sample_period_s)
      .key("series")
      .array_begin();
  for (const telemetry::SeriesReport& s : t.series) {
    const char* kind = "counter";
    switch (s.kind) {
      case telemetry::SeriesKind::kCounter: kind = "counter"; break;
      case telemetry::SeriesKind::kGaugeLast: kind = "gauge"; break;
      case telemetry::SeriesKind::kGaugeMax: kind = "gauge_max"; break;
      case telemetry::SeriesKind::kMean: kind = "mean"; break;
      case telemetry::SeriesKind::kGaugeSum: kind = "gauge_sum"; break;
    }
    w.object_begin()
        .field("name", s.name)
        .field("kind", kind)
        .field("point_period_s", s.point_period_s)
        .key("points")
        .array_begin();
    for (double v : s.points) w.value(v);  // NaN serializes as null
    w.array_end()
        .key("summary")
        .object_begin()
        .field("min", s.min)
        .field("max", s.max)
        .field("mean", s.mean)
        .field("p50", s.p50)
        .field("p99", s.p99)
        .field("final", s.final_value)
        .object_end()
        .object_end();
  }
  w.array_end().key("histograms").array_begin();
  for (const telemetry::HistogramReport& h : t.histograms) {
    w.object_begin()
        .field("name", h.name)
        .field("lo", h.lo)
        .field("hi", h.hi)
        .field("total", h.total)
        .field("mean", h.mean)
        .key("buckets")
        .array_begin();
    for (std::uint64_t b : h.buckets) w.value(b);
    w.array_end().object_end();
  }
  w.array_end();
  if (t.profiled) {
    w.key("profile")
        .object_begin()
        .field("events", t.profile.events)
        .field("max_pending", t.profile.max_pending)
        .field("max_heap_entries", t.profile.max_heap_entries)
        .key("categories")
        .array_begin();
    for (const telemetry::ProfileCategoryReport& c : t.profile.categories) {
      w.object_begin()
          .field("name", c.name)
          .field("events", c.events)
          .field("wall_ms", c.wall_ms)
          .object_end();
    }
    w.array_end().object_end();
  }
  w.object_end();
  return w.take();
}

std::string to_json(const trace::Summary& t) {
  JsonWriter w;
  w.object_begin()
      .field("recorded", t.recorded)
      .field("dropped", t.dropped)
      .field("engine_events", t.engine_events)
      .key("categories")
      .object_begin();
  for (std::size_t i = 0; i < trace::kCategoryCount; ++i) {
    w.field(trace::category_name(static_cast<trace::Category>(i)),
            t.by_category[i]);
  }
  w.object_end().object_end();
  return w.take();
}

std::uint64_t current_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string to_json(const PerfSample& p) {
  JsonWriter w;
  w.object_begin()
      .field("wall_s", p.wall_s)
      .field("peak_rss_bytes", p.peak_rss_bytes)
      .field("events", p.events)
      .field("events_per_second", p.events_per_second)
      .key("build")
      .object_begin()
      .field("compiler", EAC_BUILD_COMPILER)
      .field("type", EAC_BUILD_TYPE)
      .field("lto", EAC_BUILD_LTO != 0)
      .object_end()
      .object_end();
  return w.take();
}

std::string to_json(const sim::DomainProfileReport& d) {
  JsonWriter w;
  w.object_begin()
      .field("count", d.count)
      .field("rounds", d.rounds)
      .field("log_dropped_rounds", d.log_dropped_rounds)
      .field("lookahead_s", d.lookahead_s)
      .field("horizon_s", d.horizon_s)
      .key("window_s")
      .object_begin()
      .field("min", d.window_min_s)
      .field("mean", d.window_mean_s)
      .field("max", d.window_max_s)
      .object_end()
      .field("rounds_per_sim_second", d.rounds_per_sim_second)
      .field("imbalance", d.imbalance)
      .key("per_domain")
      .array_begin();
  for (const sim::DomainProfileEntry& e : d.per_domain) {
    w.object_begin()
        .field("events", e.events)
        .field("share", e.share)
        .field("stall_rounds", e.stall_rounds)
        .field("cross_in", e.cross_in)
        .field("cross_out", e.cross_out)
        .field("peak_inbox_depth", e.peak_inbox_depth)
        // Wall-clock timing lives under a "wall" key at every level so
        // tooling can strip the non-deterministic subset with one rule.
        .key("wall")
        .object_begin()
        .field("barrier_wait_s", e.barrier_wait_s)
        .field("execute_s", e.execute_s)
        .object_end()
        .object_end();
  }
  w.array_end()
      .key("wall")
      .object_begin()
      .field("barrier_wait_fraction", d.barrier_wait_fraction)
      .object_end()
      .object_end();
  return w.take();
}

std::string to_json(const RunResult& r) {
  JsonWriter w;
  w.object_begin()
      .field("utilization", r.utilization)
      .field("probe_utilization", r.probe_utilization)
      .field("loss", r.loss())
      .field("blocking", r.blocking())
      .field("delay_p50_s", r.delay_p50_s)
      .field("delay_p99_s", r.delay_p99_s)
      .field("events", r.events)
      .field_raw("total", to_json(r.total));
  append_groups(w, r.groups);
  w.object_end();
  return w.take();
}

std::string to_json(const MultiLinkResult& r) {
  JsonWriter w;
  w.object_begin().key("link_utilization").array_begin();
  for (double u : r.link_utilization) w.value(u);
  w.array_end();
  append_groups(w, r.groups);
  w.object_end();
  return w.take();
}

std::string to_json(const ScenarioResult& r) {
  JsonWriter w;
  w.object_begin().key("links").array_begin();
  for (const LinkReport& l : r.links) {
    w.object_begin()
        .field("name", l.name)
        .field("utilization", l.utilization)
        .field("probe_utilization", l.probe_utilization)
        .object_end();
  }
  w.array_end()
      .field("loss", r.loss())
      .field("blocking", r.blocking())
      .field("delay_p50_s", r.delay_p50_s)
      .field("delay_p99_s", r.delay_p99_s)
      .field("events", r.events)
      .field_raw("total", to_json(r.total));
  append_groups(w, r.groups);
  // Only audited runs carry the ledger; plain builds (and hand-built
  // results, e.g. goldens) keep the historical shape.
  if (r.audit.enabled) w.field_raw("audit", to_json(r.audit));
  // Likewise, only recorded runs carry telemetry.
  if (r.telemetry.enabled) w.field_raw("telemetry", to_json(r.telemetry));
  // And only traced runs carry the trace accounting.
  if (r.trace.enabled) w.field_raw("trace", to_json(r.trace));
  // And only profiled multi-domain runs carry the execution profile.
  if (r.domains.enabled) w.field_raw("domains", to_json(r.domains));
  w.object_end();
  return w.take();
}

std::string to_json(const ScenarioSpec& spec) {
  JsonWriter w;
  w.object_begin()
      .field("name", spec.name)
      .field("policy", policy_name(spec.policy))
      .key("eac");
  append_eac(w, spec.eac);
  w.field("mbac_target_utilization", spec.mbac_target_utilization)
      .field("ac_queue",
             spec.ac_queue == AcQueueKind::kRed ? "red" : "strict-priority")
      .field("nodes", static_cast<std::uint64_t>(spec.node_count()))
      .field("routing",
             spec.routing == RoutingKind::kEcmp ? "ecmp" : "single-path")
      .key("links")
      .array_begin();
  for (const LinkSpec& l : spec.links) {
    w.object_begin()
        .field("from", l.from)
        .field("to", l.to)
        .field("rate_bps", l.rate_bps)
        .field("delay_s", l.delay.to_seconds())
        .field("buffer_packets", static_cast<std::uint64_t>(l.buffer_packets))
        .field("queue", l.queue == LinkQueueKind::kAdmission ? "admission"
                                                             : "droptail")
        .object_end();
  }
  w.array_end().key("flows").array_begin();
  for (const FlowClass& f : spec.flows) append_flow_class(w, f);
  w.array_end()
      .field("mean_lifetime_s", spec.mean_lifetime_s)
      .field("prewarm_bps", spec.prewarm_bps)
      .field("duration_s", spec.duration_s)
      .field("warmup_s", spec.warmup_s)
      .field("seed", spec.seed)
      .object_end();
  return w.take();
}

std::string to_json(const RunConfig& cfg) {
  JsonWriter w;
  w.object_begin().field("policy", policy_name(cfg.policy)).key("eac");
  append_eac(w, cfg.eac);
  w.field("mbac_target_utilization", cfg.mbac_target_utilization)
      .field("link_rate_bps", cfg.link_rate_bps)
      .field("buffer_packets", static_cast<std::uint64_t>(cfg.buffer_packets))
      .field("mean_lifetime_s", cfg.mean_lifetime_s)
      .key("flows")
      .array_begin();
  for (const FlowClass& f : cfg.classes) append_flow_class(w, f);
  w.array_end()
      .field("duration_s", cfg.duration_s)
      .field("warmup_s", cfg.warmup_s)
      .field("seed", cfg.seed)
      .object_end();
  return w.take();
}

bool write_json_file(const std::string& path, std::string_view json) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fputc('\n', f) != EOF;
  if (f != stdout) std::fclose(f);
  return ok;
}

}  // namespace eac::scenario
