// google-benchmark microbenchmarks for the simulation engine: these bound
// how much simulated traffic a wall-clock second buys, which sizes the
// default experiment scale (see scenario/scale.hpp).
//
// Besides the console table, the binary writes BENCH_engine.json
// (events/sec per benchmark; path overridable via EAC_BENCH_JSON) so the
// engine's performance trajectory is machine-readable PR-over-PR.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/fair_queue.hpp"
#include "sim/event_queue.hpp"
#include "net/link.hpp"
#include "net/priority_queue.hpp"
#include "net/queue_disc.hpp"
#include "net/virtual_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "traffic/onoff_source.hpp"

namespace {

using namespace eac;

void BM_EventScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::SimTime::microseconds(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleAndRun);

void BM_EventChained(benchmark::State& state) {
  // Self-rescheduling event: the pattern every source/link uses.
  for (auto _ : state) {
    sim::Simulator sim;
    int depth = 0;
    std::function<void()> tick = [&] {
      if (++depth < 1000) sim.schedule_after(sim::SimTime::microseconds(1), tick);
    };
    sim.schedule_after(sim::SimTime::microseconds(1), tick);
    sim.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventChained);

void BM_EventCancelHeavy(benchmark::State& state) {
  // Timer-reset churn: schedule, cancel half before they fire, run, then
  // unconditionally cancel every id again (the cancel-in-destructor
  // pattern). The old engine paid a hash-set insert per cancel and grew a
  // tombstone set on the already-fired ones.
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(
          sim.schedule_at(sim::SimTime::microseconds(i), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 1000; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run();
    for (sim::EventId id : ids) sim.cancel(id);  // all fired or cancelled
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancelHeavy);

// Classic hold benchmark on the two pending-event containers
// (event_queue.hpp): prefill N entries spread over a horizon of N
// microseconds, then steady-state pop-min + push at popped.time plus an
// exponential gap with mean equal to the horizon, so the population stays
// stationary at N. This is the access pattern of a simulation holding N
// concurrent timers, and the head-to-head that picks the Simulator's
// default container (DESIGN.md section 10).
template <typename Q>
void queue_hold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double horizon_ns = static_cast<double>(n) * 1000.0;
  Q q;
  sim::RandomStream rng{7, 11};
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<std::int64_t>(rng.exponential(horizon_ns));
    q.push({sim::SimTime::nanoseconds(t), seq++, 0, 0});
  }
  for (auto _ : state) {
    const sim::EventEntry e = q.front();
    q.pop_front();
    const auto gap = 1 + static_cast<std::int64_t>(rng.exponential(horizon_ns));
    q.push({e.time + sim::SimTime::nanoseconds(gap), seq++, 0, 0});
    benchmark::DoNotOptimize(seq);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QueueHoldHeap(benchmark::State& state) {
  queue_hold<sim::FourAryHeap>(state);
}
BENCHMARK(BM_QueueHoldHeap)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueueHoldCalendar(benchmark::State& state) {
  queue_hold<sim::CalendarQueue>(state);
}
BENCHMARK(BM_QueueHoldCalendar)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_EventSboCallback(benchmark::State& state) {
  // 56-byte capture (a net::Packet plus a pointer): fits EventFn's inline
  // buffer, so scheduling must not allocate.
  struct Payload {
    std::uint64_t v[6];
  };
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    Payload p{{1, 2, 3, 4, 5, 6}};
    for (int i = 0; i < 1000; ++i) {
      p.v[0] = static_cast<std::uint64_t>(i);
      sim.schedule_at(sim::SimTime::microseconds(i),
                      [&sum, p] { sum += p.v[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSboCallback);

void BM_EventAllocatingCallback(benchmark::State& state) {
  // 80-byte capture: exceeds the inline buffer, so each event costs a heap
  // round trip. The gap to BM_EventSboCallback prices the SBO.
  struct Payload {
    std::uint64_t v[9];
  };
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    Payload p{{1, 2, 3, 4, 5, 6, 7, 8, 9}};
    for (int i = 0; i < 1000; ++i) {
      p.v[0] = static_cast<std::uint64_t>(i);
      sim.schedule_at(sim::SimTime::microseconds(i),
                      [&sum, p] { sum += p.v[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventAllocatingCallback);

#if EAC_TRACE_ENABLED
void BM_EventTraceInstalled(benchmark::State& state) {
  // BM_EventScheduleAndRun with a trace sink on this thread: prices the
  // per-dispatch engine_event() hook, the only tracing cost a run pays
  // when nothing down the stack emits. Compare against
  // BM_EventScheduleAndRun in the same build (ON-unrecorded) and in a
  // -DEAC_TRACE=OFF build (the compiled-out baseline).
  trace::Sink sink;
  trace::Scope scope{sink};
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::SimTime::microseconds(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventTraceInstalled);

void BM_TraceEmitInstant(benchmark::State& state) {
  // Raw cost of recording one queue instant into the ring (filter checks
  // + 32-byte store), the per-packet price of an actively recording run.
  trace::Sink sink;
  trace::Scope scope{sink};
  const std::uint16_t track = sink.track("bench.q");
  const std::uint64_t bits =
      trace::pack_packet_bits(125, 0, 0, false);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 100'000;
    trace::emit(trace::EventKind::kEnqueue, 'i', sim::SimTime::nanoseconds(t),
                7, static_cast<std::uint64_t>(t), bits, track);
  }
  benchmark::DoNotOptimize(sink.recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitInstant);
#endif  // EAC_TRACE_ENABLED

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{256};
  net::Packet p;
  p.size_bytes = 125;
  for (auto _ : state) {
    q.enqueue(p, {});
    benchmark::DoNotOptimize(q.dequeue({}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_PriorityQueueTwoBands(benchmark::State& state) {
  net::StrictPriorityQueue q{2, 256};
  net::Packet data;
  data.size_bytes = 125;
  net::Packet probe = data;
  probe.band = 1;
  probe.type = net::PacketType::kProbe;
  for (auto _ : state) {
    q.enqueue(data, {});
    q.enqueue(probe, {});
    benchmark::DoNotOptimize(q.dequeue({}));
    benchmark::DoNotOptimize(q.dequeue({}));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PriorityQueueTwoBands);

void BM_FairQueueEightFlows(benchmark::State& state) {
  net::FairQueue q{1024, 125};
  net::Packet p;
  p.size_bytes = 125;
  std::uint32_t i = 0;
  for (auto _ : state) {
    p.flow = i++ % 8;
    q.enqueue(p, {});
    benchmark::DoNotOptimize(q.dequeue({}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FairQueueEightFlows);

void BM_VirtualQueueMark(benchmark::State& state) {
  net::VirtualQueueMarker vq{9e6, 25'000, 2};
  net::Packet p;
  p.size_bytes = 125;
  p.ecn_capable = true;
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 100'000;  // 100 us steps ~ 10 Mbps of 125 B packets
    benchmark::DoNotOptimize(
        vq.on_arrival(p, sim::SimTime::nanoseconds(t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualQueueMark);

void BM_RandomExponential(benchmark::State& state) {
  sim::RandomStream rng{1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomExponential);

void BM_LinkPipeline(benchmark::State& state) {
  // Full path: source -> link (drop-tail) -> sink, one simulated second
  // of a 10 Mbps link at 125-byte packets (~10k packets).
  struct Sink : net::PacketHandler {
    std::uint64_t n = 0;
    void handle(net::Packet) override { ++n; }
  };
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::Link link{sim, "l", 10e6, sim::SimTime::milliseconds(1),
                   std::make_unique<net::DropTailQueue>(200)};
    Sink sink;
    link.set_destination(&sink);
    traffic::SourceIdentity ident;
    ident.packet_size = 125;
    traffic::OnOffSource src{sim, ident, link,
                             {.burst_rate_bps = 10e6, .mean_on_s = 1e9,
                              .mean_off_s = 1e-9},
                             1, 1};
    src.start();
    sim.run(sim::SimTime::seconds(1));
    src.stop();
    benchmark::DoNotOptimize(sink.n);
    delivered += sink.n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_LinkPipeline)->Unit(benchmark::kMillisecond);

/// Console output plus a JSON sidecar: one row per benchmark with its
/// items/sec throughput, appended to BENCH_engine.json for PR-over-PR
/// tracking.
class JsonSidecarReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      Row row;
      row.name = r.benchmark_name();
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) row.items_per_second = it->second;
      row.real_time_ns = r.GetAdjustedRealTime();
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void write_json(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"events_per_second\": %.6e, "
                   "\"real_time_ns\": %.1f}%s\n",
                   rows_[i].name.c_str(), rows_[i].items_per_second,
                   rows_[i].real_time_ns, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string name;
    double items_per_second = 0;
    double real_time_ns = 0;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench `--json=PATH` flag (strip it before the
  // benchmark library sees it); EAC_BENCH_JSON remains as a fallback.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonSidecarReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path.empty()) {
    const char* env = std::getenv("EAC_BENCH_JSON");
    json_path = env != nullptr ? env : "BENCH_engine.json";
  }
  reporter.write_json(json_path.c_str());
  return 0;
}
