#include "net/wfq_queue.hpp"

#include <gtest/gtest.h>

#include <map>

namespace eac::net {
namespace {

Packet pkt(FlowId flow, std::uint32_t size = 125) {
  Packet p;
  p.flow = flow;
  p.size_bytes = size;
  return p;
}

TEST(Wfq, EqualWeightsAlternateService) {
  WfqQueue q{100};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.enqueue(pkt(1), {}));
    ASSERT_TRUE(q.enqueue(pkt(2), {}));
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 4; ++i) {
    auto a = q.dequeue({});
    auto b = q.dequeue({});
    ASSERT_TRUE(a && b);
    ++served[a->flow];
    ++served[b->flow];
    // After each pair, both flows have equal service.
    EXPECT_EQ(served[1], served[2]);
  }
}

TEST(Wfq, WeightsSkewService) {
  WfqQueue q{100};
  q.set_weight(1, 3.0);
  q.set_weight(2, 1.0);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(q.enqueue(pkt(1), {}));
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(q.enqueue(pkt(2), {}));
  }
  int flow1 = 0;
  for (int i = 0; i < 8; ++i) {
    auto p = q.dequeue({});
    ASSERT_TRUE(p.has_value());
    if (p->flow == 1) ++flow1;
  }
  // Flow 1 should get ~3/4 of the first 8 services.
  EXPECT_GE(flow1, 5);
  EXPECT_LE(flow1, 7);
}

TEST(Wfq, SmallPacketsDoNotStarveLargeOnes) {
  WfqQueue q{100};
  // Flow 1 sends 500-byte packets, flow 2 sends 125-byte packets: byte
  // fairness means flow 2 serves ~4 packets per flow-1 packet.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.enqueue(pkt(1, 500), {}));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(q.enqueue(pkt(2, 125), {}));
  std::uint64_t bytes1 = 0, bytes2 = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = q.dequeue({});
    ASSERT_TRUE(p.has_value());
    (p->flow == 1 ? bytes1 : bytes2) += p->size_bytes;
  }
  const double ratio = static_cast<double>(bytes1) / static_cast<double>(bytes2);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Wfq, FifoWithinFlow) {
  WfqQueue q{100};
  for (std::uint32_t i = 0; i < 10; ++i) {
    Packet p = pkt(1);
    p.seq = i;
    ASSERT_TRUE(q.enqueue(p, {}));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto p = q.dequeue({});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(Wfq, LongestQueueDropWhenFull) {
  WfqQueue q{4};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.enqueue(pkt(1), {}));
  // Arrival from a new flow evicts one of the hog's packets...
  EXPECT_TRUE(q.enqueue(pkt(2), {}));
  EXPECT_EQ(q.drops().data, 1u);
  EXPECT_EQ(q.packet_count(), 4u);
  // ...but an arrival from the hog itself is dropped.
  EXPECT_FALSE(q.enqueue(pkt(1), {}));
  EXPECT_EQ(q.drops().data, 2u);
  // Drain respects tombstones: exactly four packets come out, one of
  // them flow 2's.
  int out = 0, flow2 = 0;
  while (auto p = q.dequeue({})) {
    ++out;
    if (p->flow == 2) ++flow2;
  }
  EXPECT_EQ(out, 4);
  EXPECT_EQ(flow2, 1);
}

TEST(Wfq, VirtualTimeResetsWhenIdle) {
  WfqQueue q{10};
  ASSERT_TRUE(q.enqueue(pkt(1), {}));
  ASSERT_TRUE(q.dequeue({}).has_value());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.virtual_time(), 0.0);
}

TEST(Wfq, LateFlowNotPenalizedForPastIdleness) {
  WfqQueue q{100};
  // Flow 1 has been sending a while...
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.enqueue(pkt(1), {}));
    q.dequeue({});
  }
  // ...then flow 2 arrives: its start stamp is max(vtime, 0), so it is
  // served interleaved with flow 1's backlog (within the first two
  // services), not queued behind all of it.
  ASSERT_TRUE(q.enqueue(pkt(1), {}));
  ASSERT_TRUE(q.enqueue(pkt(1), {}));
  ASSERT_TRUE(q.enqueue(pkt(2), {}));
  auto first = q.dequeue({});
  auto second = q.dequeue({});
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(first->flow == 2 || second->flow == 2);
}

}  // namespace
}  // namespace eac::net
