#!/usr/bin/env bash
# The domain-profile artifact path, end to end: a 4-domain eac_cli run
# must attach a "domains" block that tools/domain_report.py --check
# accepts (key presence, types, shares summing to one, per_domain length
# matching the count), and a serial run's artifact must carry no block —
# domain_report.py is required to exit 1 on it, because CI asserting the
# block's presence is only meaningful if absence actually fails.
#
# Usage: tests/run_domain_report_check.sh EAC_CLI_BINARY [python3] [scratch-dir]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 EAC_CLI_BINARY [python3] [scratch-dir]" >&2
  exit 2
fi

BIN="$1"
PY="${2:-python3}"
SCRATCH="${3:-$(mktemp -d)}"
mkdir -p "$SCRATCH"
HERE="$(cd "$(dirname "$0")" && pwd)"

EAC_DOMAINS=4 "$BIN" --scenario multihop --source exp1 --tau 3.5 \
  --link 2e6 --lifetime 20 --duration 25 --warmup 8 --seed 11 \
  --json "$SCRATCH/dom4.json" >/dev/null

"$PY" "$HERE/../tools/domain_report.py" --check --quiet "$SCRATCH/dom4.json"

EAC_DOMAINS=1 "$BIN" --scenario multihop --source exp1 --tau 3.5 \
  --link 2e6 --lifetime 20 --duration 25 --warmup 8 --seed 11 \
  --json "$SCRATCH/dom1.json" >/dev/null

if "$PY" "$HERE/../tools/domain_report.py" --check --quiet \
    "$SCRATCH/dom1.json" 2>/dev/null; then
  echo "domain report check FAILED: serial artifact accepted" >&2
  exit 1
fi

echo "domain report check passed: 4-domain profile valid, serial rejected"
