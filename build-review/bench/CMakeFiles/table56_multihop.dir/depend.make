# Empty dependencies file for table56_multihop.
# This may be replaced when dependencies are built.
