# Empty dependencies file for table3_hetero_eps.
# This may be replaced when dependencies are built.
