file(REMOVE_RECURSE
  "CMakeFiles/ext_probe_shapes.dir/ext_probe_shapes.cpp.o"
  "CMakeFiles/ext_probe_shapes.dir/ext_probe_shapes.cpp.o.d"
  "ext_probe_shapes"
  "ext_probe_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_probe_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
