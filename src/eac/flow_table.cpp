#include "eac/flow_table.hpp"

namespace eac {

FlowHandle FlowTable::allocate(net::FlowId id, std::uint32_t cls) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(gen_.size());
    gen_.push_back(0);  // bumped to 1 below
    flow_id.emplace_back();
    class_idx.emplace_back();
    sent.emplace_back();
    on_ends.emplace_back();
    pending.emplace_back();
    crng.emplace_back();
    next_frame.emplace_back();
    bucket.push_back(traffic::TokenBucket{0, 0});  // placeholder; no default ctor
  }
  if (++gen_[idx] == 0) gen_[idx] = 1;  // generation 0 is reserved: never valid
  flow_id[idx] = id;
  class_idx[idx] = cls;
  sent[idx] = 0;
  on_ends[idx] = sim::SimTime::zero();
  pending[idx] = 0;
  crng[idx] = sim::CompactRandomStream{};
  next_frame[idx] = 0;
  ++live_;
  return FlowHandle{idx, gen_[idx]};
}

void FlowTable::release(FlowHandle h) {
  const std::uint32_t idx = index_of(h);
  if (++gen_[idx] == 0) gen_[idx] = 1;
  free_.push_back(idx);
  --live_;
}

}  // namespace eac
