// Deterministic random streams for simulation components.
//
// Every stochastic component (each source, each arrival process, ...) owns
// its own RandomStream, derived from (run seed, stream id). Streams are
// therefore independent of each other and of the order components consume
// numbers in, which keeps scenario results reproducible when unrelated
// pieces are added or removed.
#pragma once

#include <cstdint>
#include <random>

namespace eac::sim {

/// Mixes a (seed, stream) pair into a well-spread 64-bit state (splitmix64).
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

/// One independent random stream with the distributions the scenarios need.
class RandomStream {
 public:
  RandomStream(std::uint64_t seed, std::uint64_t stream)
      : eng_{derive_seed(seed, stream)} {}

  /// Uniform on [0, 1).
  double uniform();

  /// Uniform on [0, bound).
  std::uint64_t integer(std::uint64_t bound);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Pareto with shape `alpha` (> 1) scaled so the mean is `mean`.
  /// Used for the POO1 source's heavy-tailed on/off periods.
  double pareto(double alpha, double mean);

  /// Lognormal parameterized directly by (mu, sigma) of the underlying normal.
  double lognormal(double mu, double sigma);

 private:
  std::mt19937_64 eng_;
};

}  // namespace eac::sim
