file(REMOVE_RECURSE
  "CMakeFiles/fig02_basic.dir/fig02_basic.cpp.o"
  "CMakeFiles/fig02_basic.dir/fig02_basic.cpp.o.d"
  "fig02_basic"
  "fig02_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
